// psml_cli — command-line front end for the framework: run any model /
// dataset / mode combination with every optimization toggle exposed,
// optionally dumping a chrome://tracing timeline of the simulated device
// and a checkpoint of the trained model.
//
//   psml_cli --model=mlp --dataset=mnist --mode=parsecureml
//            --samples=256 --batch=128 --epochs=4 --lr=0.05
//            [--no-pipeline --no-compression --no-tensor-core --no-gpu
//             --no-adaptive --no-cpu-parallel --no-eq8]
//            [--infer] [--trace=run.json] [--save=model.bin] [--seed=N]
//
// Run with --help for the full list.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "ml/checkpoint.hpp"
#include "parsecureml/framework.hpp"
#include "sgpu/trace_export.hpp"

namespace api = psml::parsecureml;
using psml::data::DatasetKind;
using psml::ml::ModelKind;

namespace {

struct Args {
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) > 0; }
  std::string get(const std::string& k, const std::string& dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  std::size_t get_num(const std::string& k, std::size_t dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt
                          : static_cast<std::size_t>(
                                std::strtoull(it->second.c_str(), nullptr, 10));
  }
  double get_double(const std::string& k, double dflt) const {
    auto it = kv.find(k);
    return it == kv.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    // Fresh strings at each step, no in-place erase/substr-self-assign:
    // GCC 12's -Wrestrict misfires on those patterns and this file must
    // build under -Werror.
    const char* raw = argv[i];
    if (raw[0] != '-' || raw[1] != '-') {
      std::fprintf(stderr, "unrecognized argument: %s (flags start with --)\n",
                   raw);
      std::exit(2);
    }
    const std::string a(raw + 2);
    const auto eq = a.find('=');
    if (eq == std::string::npos) {
      args.kv.emplace(a, "1");
    } else {
      args.kv.insert_or_assign(a.substr(0, eq), a.substr(eq + 1));
    }
  }
  return args;
}

void usage() {
  std::puts(
      "psml_cli — ParSecureML-Repro experiment runner\n"
      "\n"
      "  --model=mlp|cnn|rnn|linear|logistic|svm     (default mlp)\n"
      "  --dataset=mnist|vggface2|nist|cifar10|synthetic (default mnist)\n"
      "  --mode=parsecureml|secureml|plain-cpu|plain-gpu (default parsecureml)\n"
      "  --samples=N --batch=N --epochs=N --lr=F --seed=N --rnn-steps=N\n"
      "  --infer            run secure inference instead of training\n"
      "  --no-evaluate      skip the post-run accuracy evaluation\n"
      "optimization toggles (switch mode to custom):\n"
      "  --no-gpu --no-pipeline --no-compression --no-tensor-core\n"
      "  --no-cpu-parallel --no-adaptive --no-eq8\n"
      "  --compression-threshold=F  (default 0.75)\n"
      "outputs:\n"
      "  --trace=FILE.json  chrome://tracing timeline of the device\n"
      "  --save=FILE.bin    checkpoint of the trained (reconstructed) model\n");
}

ModelKind parse_model(const std::string& s) {
  if (s == "cnn") return ModelKind::kCnn;
  if (s == "rnn") return ModelKind::kRnn;
  if (s == "linear") return ModelKind::kLinear;
  if (s == "logistic") return ModelKind::kLogistic;
  if (s == "svm") return ModelKind::kSvm;
  if (s == "mlp") return ModelKind::kMlp;
  std::fprintf(stderr, "unknown model: %s\n", s.c_str());
  std::exit(2);
}

DatasetKind parse_dataset(const std::string& s) {
  if (s == "mnist") return DatasetKind::kMnist;
  if (s == "vggface2") return DatasetKind::kVggFace2;
  if (s == "nist") return DatasetKind::kNist;
  if (s == "cifar10") return DatasetKind::kCifar10;
  if (s == "synthetic") return DatasetKind::kSynthetic;
  std::fprintf(stderr, "unknown dataset: %s\n", s.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.has("help")) {
    usage();
    return 0;
  }

  api::RunConfig cfg;
  cfg.model = parse_model(args.get("model", "mlp"));
  cfg.dataset = parse_dataset(args.get("dataset", "mnist"));
  cfg.samples = args.get_num("samples", 128);
  cfg.batch = args.get_num("batch", 64);
  cfg.epochs = args.get_num("epochs", 2);
  cfg.lr = static_cast<float>(args.get_double("lr", 0.05));
  cfg.seed = args.get_num("seed", 20260705);
  cfg.rnn_steps = args.get_num("rnn-steps", 4);
  cfg.evaluate = !args.has("no-evaluate");
  cfg.checkpoint_path = args.get("save", "");
  if (!cfg.checkpoint_path.empty()) cfg.evaluate = true;

  const std::string mode = args.get("mode", "parsecureml");
  if (mode == "secureml") {
    cfg.mode = api::Mode::kSecureML;
  } else if (mode == "plain-cpu") {
    cfg.mode = api::Mode::kPlainCpu;
  } else if (mode == "plain-gpu") {
    cfg.mode = api::Mode::kPlainGpu;
  } else {
    cfg.mode = api::Mode::kParSecureML;
  }

  // Any optimization toggle moves the run into custom mode.
  const char* toggles[] = {"no-gpu",          "no-pipeline",
                           "no-compression",  "no-tensor-core",
                           "no-cpu-parallel", "no-adaptive",
                           "no-eq8",          "compression-threshold"};
  bool custom = false;
  for (const char* t : toggles) custom = custom || args.has(t);
  if (custom) {
    cfg.custom_opts = psml::mpc::PartyOptions::parsecureml();
    if (args.has("no-gpu")) {
      cfg.custom_opts.use_gpu = false;
      cfg.custom_opts.adaptive = false;
    }
    if (args.has("no-pipeline")) cfg.custom_opts.use_pipeline = false;
    if (args.has("no-compression")) cfg.custom_opts.use_compression = false;
    if (args.has("no-tensor-core")) cfg.custom_opts.use_tensor_core = false;
    if (args.has("no-cpu-parallel")) cfg.custom_opts.cpu_parallel = false;
    if (args.has("no-adaptive")) cfg.custom_opts.adaptive = false;
    if (args.has("no-eq8")) cfg.custom_opts.fuse_eq8 = false;
    cfg.custom_opts.compression_threshold =
        args.get_double("compression-threshold", 0.75);
    cfg.mode = api::Mode::kCustom;
  }

  if (cfg.model == ModelKind::kRnn &&
      cfg.dataset != DatasetKind::kSynthetic) {
    std::fprintf(stderr, "note: RNN runs on the SYNTHETIC dataset only; "
                         "switching dataset.\n");
    cfg.dataset = DatasetKind::kSynthetic;
  }

  psml::sgpu::Device::global().trace().clear();

  std::printf("psml_cli: %s on %s, mode %s, %zu samples, batch %zu, %zu "
              "epochs, lr %.3g\n",
              psml::ml::to_string(cfg.model).c_str(),
              psml::data::to_string(cfg.dataset).c_str(),
              api::to_string(cfg.mode).c_str(), cfg.samples, cfg.batch,
              cfg.epochs, cfg.lr);

  const bool infer = args.has("infer");
  const api::RunResult r =
      infer ? api::run_inference(cfg) : api::run_training(cfg);

  std::printf("\n%-24s %.4f s\n", "offline generate", r.offline_generate_sec);
  std::printf("%-24s %.4f s\n", "offline transmit", r.offline_transmit_sec);
  std::printf("%-24s %.4f s\n", "online", r.online_sec);
  std::printf("%-24s %.4f s\n", "total", r.total_sec);
  for (const auto& [phase, sec] : r.online_phases) {
    std::printf("  %-22s %.4f s (both servers)\n", phase.c_str(), sec);
  }
  std::printf("%-24s %.2f MiB\n", "server<->server",
              static_cast<double>(r.server_to_server_bytes) / (1 << 20));
  std::printf("%-24s %.2f MiB\n", "offline material",
              static_cast<double>(r.offline_bytes) / (1 << 20));
  if (r.compression.messages > 0) {
    std::printf("%-24s %llu/%llu messages, %.1f%% bytes saved\n",
                "compression",
                static_cast<unsigned long long>(
                    r.compression.compressed_messages),
                static_cast<unsigned long long>(r.compression.messages),
                r.compression.savings() * 100.0);
  }
  if (cfg.evaluate) {
    std::printf("%-24s %.3f\n", infer ? "accuracy (inference)" : "accuracy",
                r.accuracy);
  }

  if (args.has("trace")) {
    const std::string path = args.get("trace", "trace.json");
    psml::sgpu::write_chrome_trace(path, psml::sgpu::Device::global().trace());
    std::printf("device timeline written to %s (open in chrome://tracing)\n",
                path.c_str());
  }
  if (!cfg.checkpoint_path.empty() && !infer) {
    std::printf("trained model checkpoint written to %s\n",
                cfg.checkpoint_path.c_str());
  }
  return 0;
}
