// Two-process secure inference over TCP — the deployment shape of Fig. 1b.
//
// Run in three terminals (or let the no-arg mode fork both servers itself):
//   ./secure_inference_tcp server0 9001     # computation server 0
//   ./secure_inference_tcp server1 9001     # computation server 1
//   (no args)                               # in-process demo of the same
//
// The client role lives in whichever process you start with "server0": it
// deals triplets, shares the input, and reconstructs predictions — in a real
// deployment the dealer would be a third machine; the protocol code is
// identical.
#include <cstdio>
#include <cstring>
#include <thread>

#include "data/datasets.hpp"
#include "ml/models.hpp"
#include "ml/secure/secure_model.hpp"
#include "mpc/party.hpp"
#include "net/local_channel.hpp"
#include "net/serialize.hpp"
#include "net/tcp_channel.hpp"
#include "parsecureml/store_transfer.hpp"

using namespace psml;

namespace {

constexpr std::size_t kSamples = 32;

ml::ModelConfig model_config(const data::Dataset& ds) {
  ml::ModelConfig mc;
  mc.kind = ml::ModelKind::kMlp;
  mc.input_dim = ds.geometry.features();
  mc.classes = 10;
  mc.seed = 21;
  return mc;
}

// One server's role: receive offline material + input share, run secure
// inference, send the prediction share to the peer holding the client role.
void run_server(int id, std::shared_ptr<net::Channel> peer,
                mpc::TripletStore store, MatrixF x_share,
                MatrixF* pred_share_out) {
  const auto opts = mpc::PartyOptions::parsecureml();
  mpc::PartyContext ctx(id, std::move(peer), &sgpu::Device::global(), opts);
  ctx.set_triplets(std::move(store));

  const auto ds = data::make_dataset(data::DatasetKind::kMnist,
                                     data::LabelScheme::kOneHot10, kSamples,
                                     2024);
  auto pair = ml::build_secure_pair(model_config(ds));
  auto& model = id == 0 ? pair.m0 : pair.m1;

  ml::SecureEnv env{&ctx, false, nullptr};
  *pred_share_out = ml::secure_infer_batch(env, model, x_share);
  std::printf("[server%d] inference done (%zu x %zu prediction share)\n", id,
              pred_share_out->rows(), pred_share_out->cols());
}

int run_role(const std::string& role, std::uint16_t port) {
  const auto ds = data::make_dataset(data::DatasetKind::kMnist,
                                     data::LabelScheme::kOneHot10, kSamples,
                                     2024);
  auto pair = ml::build_secure_pair(model_config(ds));
  std::vector<mpc::TripletSpec> plan;
  pair.m0.plan_batch(plan, kSamples, ml::LossKind::kMse, 10, false);

  if (role == "server0") {
    // Client+server0 role: deal, send server1 its material, run, combine.
    auto peer = net::TcpChannel::listen(port);
    mpc::TripletDealer dealer(&sgpu::Device::global(), {true, false, 3001});
    auto [st0, st1] = dealer.generate(plan);
    auto xs = mpc::share_float(ds.x, 3002);

    parsecureml::send_store(*peer, st1);
    net::send_matrix(*peer, mpc::tags::kClientData, xs.s1);
    std::printf("[server0] offline material sent to server1\n");

    MatrixF pred0;
    run_server(0, peer, std::move(st0), xs.s0, &pred0);

    const MatrixF pred1 = net::recv_matrix_f32(*peer, mpc::tags::kResult);
    const MatrixF pred = mpc::reconstruct_float(pred0, pred1);
    const double acc = ml::accuracy(pred, ds.y);
    std::printf("[client] reconstructed predictions, accuracy %.3f\n", acc);
    return 0;
  }

  // server1 role.
  auto peer = net::TcpChannel::connect("127.0.0.1", port, 30.0);
  mpc::TripletStore st1 = parsecureml::recv_store(*peer);
  const MatrixF x1 = net::recv_matrix_f32(*peer, mpc::tags::kClientData);
  std::printf("[server1] offline material received\n");

  MatrixF pred1;
  run_server(1, peer, std::move(st1), x1, &pred1);
  net::send_matrix(*peer, mpc::tags::kResult, pred1);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3) {
    return run_role(argv[1], static_cast<std::uint16_t>(std::atoi(argv[2])));
  }
  // No-arg mode: run both roles over loopback TCP in one process.
  std::printf("running both parties over loopback TCP (port 9314)\n");
  std::thread t1([] { run_role("server1", 9314); });
  const int rc = run_role("server0", 9314);
  t1.join();
  return rc;
}
