// Quickstart: train one model securely with ParSecureML and compare against
// the SecureML baseline — the 60-second tour of the public API.
//
//   ./quickstart [model] [dataset] [epochs]
//   model:   mlp | cnn | rnn | linear | logistic | svm   (default mlp)
//   dataset: mnist | vggface2 | nist | cifar10 | synthetic (default mnist)
#include <cstdio>
#include <string>

#include "parsecureml/framework.hpp"

namespace psml_api = psml::parsecureml;

namespace {

psml::ml::ModelKind parse_model(const std::string& s) {
  using psml::ml::ModelKind;
  if (s == "cnn") return ModelKind::kCnn;
  if (s == "rnn") return ModelKind::kRnn;
  if (s == "linear") return ModelKind::kLinear;
  if (s == "logistic") return ModelKind::kLogistic;
  if (s == "svm") return ModelKind::kSvm;
  return ModelKind::kMlp;
}

psml::data::DatasetKind parse_dataset(const std::string& s) {
  using psml::data::DatasetKind;
  if (s == "vggface2") return DatasetKind::kVggFace2;
  if (s == "nist") return DatasetKind::kNist;
  if (s == "cifar10") return DatasetKind::kCifar10;
  if (s == "synthetic") return DatasetKind::kSynthetic;
  return DatasetKind::kMnist;
}

void report(const char* label, const psml_api::RunResult& r) {
  std::printf("%-14s offline %.3fs (gen %.3f + tx %.3f) | online %.3fs | "
              "total %.3fs | acc %.3f | s2s traffic %.2f MiB\n",
              label, r.offline_generate_sec + r.offline_transmit_sec,
              r.offline_generate_sec, r.offline_transmit_sec, r.online_sec,
              r.total_sec, r.accuracy,
              static_cast<double>(r.server_to_server_bytes) / (1 << 20));
}

}  // namespace

int main(int argc, char** argv) {
  psml_api::RunConfig cfg;
  cfg.model = parse_model(argc > 1 ? argv[1] : "mlp");
  cfg.dataset = parse_dataset(argc > 2 ? argv[2] : "mnist");
  cfg.epochs = argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 6;
  cfg.samples = 128;
  cfg.batch = 64;
  cfg.lr = 0.05f;
  if (cfg.model == psml::ml::ModelKind::kRnn) {
    cfg.dataset = psml::data::DatasetKind::kSynthetic;
  }

  std::printf("ParSecureML quickstart: %s on %s, %zu epochs, batch %zu\n\n",
              psml::ml::to_string(cfg.model).c_str(),
              psml::data::to_string(cfg.dataset).c_str(), cfg.epochs,
              cfg.batch);

  cfg.mode = psml_api::Mode::kParSecureML;
  const auto par = psml_api::run_training(cfg);
  report("ParSecureML", par);

  cfg.mode = psml_api::Mode::kSecureML;
  const auto base = psml_api::run_training(cfg);
  report("SecureML", base);

  if (par.online_sec > 0) {
    std::printf("\nonline speedup over SecureML: %.2fx\n",
                base.online_sec / par.online_sec);
  }
  std::printf("compression saved %.1f%% of reconstruct-phase bytes\n",
              par.compression.savings() * 100.0);
  return 0;
}
