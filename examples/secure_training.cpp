// Domain scenario: a hospital trains a fingerprint classifier (NIST-like
// geometry) on two untrusted servers. Walks the full lifecycle explicitly —
// dealer/offline phase, per-server online training, client-side weight
// reconstruction and evaluation — using the layer-level API rather than the
// one-call driver, so it doubles as a tour of the internals.
#include <cstdio>
#include <thread>

#include "common/timer.hpp"
#include "data/datasets.hpp"
#include "ml/models.hpp"
#include "ml/secure/secure_model.hpp"
#include "mpc/party.hpp"
#include "net/local_channel.hpp"
#include "profile/profiler.hpp"

using namespace psml;

int main() {
  // ---- client side: data + model + offline material ----
  const std::size_t samples = 64;
  const auto ds = data::make_dataset(data::DatasetKind::kNist,
                                     data::LabelScheme::kOneHot10, samples, 7);
  std::printf("dataset: NIST-like %zux%zu, %zu samples\n", ds.geometry.h,
              ds.geometry.w, samples);

  ml::ModelConfig mc;
  mc.kind = ml::ModelKind::kMlp;
  mc.input_dim = ds.geometry.features();
  mc.classes = 10;
  auto pair = ml::build_secure_pair(mc);

  constexpr int kEpochs = 12;
  std::vector<mpc::TripletSpec> plan;
  pair.m0.plan_batch(plan, samples, ml::LossKind::kMse, 10, true);
  std::printf("offline plan: %zu triplet specs per epoch\n", plan.size());

  Timer offline_timer;
  mpc::TripletDealer dealer(&sgpu::Device::global(), {true, false, 99});
  auto [st0, st1] = dealer.generate(plan);
  st0.set_recycle(true);  // reuse masks across epochs (Eq. 11)
  st1.set_recycle(true);
  auto xs = mpc::share_float(ds.x, 11);
  auto ys = mpc::share_float(ds.y, 12);
  std::printf("offline phase: %.3fs, %.2f MiB of material per server\n",
              offline_timer.seconds(),
              static_cast<double>(st0.bytes()) / (1 << 20));

  // ---- two servers train on shares ----
  auto chans = net::LocalChannel::make_pair();
  const auto opts = mpc::PartyOptions::parsecureml();
  mpc::PartyContext ctx0(0, chans.a, &sgpu::Device::global(), opts);
  mpc::PartyContext ctx1(1, chans.b, &sgpu::Device::global(), opts);
  ctx0.set_triplets(std::move(st0));
  ctx1.set_triplets(std::move(st1));

  Timer online_timer;
  auto server = [&](mpc::PartyContext& ctx, ml::SecureSequential& model,
                    const MatrixF& x, const MatrixF& y) {
    pipeline::AsyncLane lane;
    ml::SecureEnv env{&ctx, true, &lane};
    for (int e = 0; e < kEpochs; ++e) {
      ml::secure_train_batch(env, model, ml::LossKind::kMse, x, y, 0.02f);
    }
    lane.drain();
  };
  std::thread s0([&] { server(ctx0, pair.m0, xs.s0, ys.s0); });
  std::thread s1([&] { server(ctx1, pair.m1, xs.s1, ys.s1); });
  s0.join();
  s1.join();
  std::printf("online phase: %.3fs over %d epochs\n", online_timer.seconds(),
              kEpochs);

  // ---- client reconstructs the model and evaluates ----
  auto trained = ml::reconstruct_plain(mc, pair.m0, pair.m1);
  const double acc = ml::accuracy(trained.forward(ds.x), ds.y);
  std::printf("train accuracy after reconstruction: %.3f\n", acc);

  const auto& comp = ctx0.compressed().stats();
  std::printf("server0 compression: %llu/%llu messages compressed, %.1f%% "
              "bytes saved\n",
              static_cast<unsigned long long>(comp.compressed_messages),
              static_cast<unsigned long long>(comp.messages),
              comp.savings() * 100.0);
  for (const auto& [phase, stat] : profile::Profiler::global().report()) {
    std::printf("  %-22s %8.3fs x%llu\n", phase.c_str(), stat.total_sec,
                static_cast<unsigned long long>(stat.count));
  }
  return acc > 0.4 ? 0 : 1;
}
