// Beyond ML (paper Sec. 7.7): "Although ParSecureML targets machine learning
// tasks, ParSecureML can also be used in other matrix-based computing
// tasks." This example runs a secure *statistics* pipeline on the raw
// protocol API:
//
//   1. Two servers hold shares of a private data matrix X (rows = records).
//   2. They compute shares of the covariance C = X^T X / n with one triplet
//      matmul (centering is share-linear).
//   3. They run power iteration y <- C v to approximate the top principal
//      component. The normalization 1/||y|| needs a public scalar: the
//      squared norm is opened each round (a deliberate, documented leak —
//      one scalar per iteration; everything else stays shared).
//   4. The client reconstructs the eigenvector and compares against a
//      plaintext eigensolve.
#include <cmath>
#include <cstdio>
#include <thread>

#include "mpc/secure_matmul.hpp"
#include "mpc/secure_mul.hpp"
#include "net/serialize.hpp"
#include "mpc/share.hpp"
#include "net/local_channel.hpp"
#include "rng/rng.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

using namespace psml;

namespace {

constexpr std::size_t kRecords = 256;
constexpr std::size_t kDims = 24;
constexpr int kPowerIters = 12;

// One server's role: covariance + power iteration on shares.
MatrixF server_role(mpc::PartyContext& ctx, const MatrixF& x_share,
                    mpc::TripletStore store) {
  ctx.set_triplets(std::move(store));
  const float inv_n = 1.0f / static_cast<float>(kRecords);

  // Covariance share: C_i = share of X^T X, scaled. X^T is a share of the
  // transpose (transpose is linear).
  MatrixF cov =
      mpc::secure_matmul(ctx, tensor::transpose(x_share), x_share);
  tensor::scale(cov, inv_n, cov);

  // Power iteration. v starts public (both servers hold the same v; party 0
  // holds it as its share, party 1 holds zeros — a valid sharing).
  MatrixF v(kDims, 1, 0.0f);
  if (ctx.id() == 0) {
    for (std::size_t i = 0; i < kDims; ++i) {
      v(i, 0) = 1.0f / std::sqrt(static_cast<float>(kDims));
    }
  }
  for (int it = 0; it < kPowerIters; ++it) {
    MatrixF y = mpc::secure_matmul(ctx, cov, v);  // share of C v
    // Squared norm via a secure elementwise product, then opened (the one
    // public scalar per iteration).
    MatrixF y_sq = mpc::secure_mul(ctx, y, y);
    float norm_sq_share = 0.0f;
    for (std::size_t i = 0; i < y_sq.size(); ++i) {
      norm_sq_share += y_sq.data()[i];
    }
    // Open the scalar.
    MatrixF mine(1, 1, norm_sq_share);
    const net::Tag tag = mpc::tags::kControl + 0x300 + static_cast<net::Tag>(it);
    net::send_matrix(ctx.peer(), tag, mine);
    const MatrixF theirs = net::recv_matrix_f32(ctx.peer(), tag);
    const float norm = std::sqrt(mine(0, 0) + theirs(0, 0));
    tensor::scale(y, 1.0f / norm, v = y);
  }
  return v;
}

}  // namespace

int main() {
  // Private data: correlated Gaussian records with a dominant direction.
  MatrixF x(kRecords, kDims);
  rng::fill_normal_par(x, 0.0f, 0.3f, 42);
  MatrixF direction(1, kDims);
  rng::fill_uniform_par(direction, -1.0f, 1.0f, 43);
  for (std::size_t r = 0; r < kRecords; ++r) {
    MatrixF coeff(1, 1);
    rng::fill_normal_par(coeff, 0.0f, 1.0f, 1000 + r);
    for (std::size_t c = 0; c < kDims; ++c) {
      x(r, c) += coeff(0, 0) * direction(0, c);
    }
  }

  // Plaintext reference: power iteration on the true covariance.
  MatrixF cov = tensor::matmul(tensor::transpose(x), x);
  tensor::scale(cov, 1.0f / static_cast<float>(kRecords), cov);
  MatrixF v_ref(kDims, 1, 1.0f / std::sqrt(static_cast<float>(kDims)));
  for (int it = 0; it < kPowerIters; ++it) {
    MatrixF y = tensor::matmul(cov, v_ref);
    const double n = tensor::fro_norm(y);
    tensor::scale(y, static_cast<float>(1.0 / n), v_ref = y);
  }

  // Offline: dealer plans one covariance matmul + per-iteration matmul and
  // elementwise triplets.
  std::vector<mpc::TripletSpec> plan;
  plan.push_back({mpc::TripletKind::kMatMul, kDims, kRecords, kDims});
  for (int it = 0; it < kPowerIters; ++it) {
    plan.push_back({mpc::TripletKind::kMatMul, kDims, kDims, 1});
    plan.push_back({mpc::TripletKind::kElementwise, kDims, 0, 1});
  }
  mpc::TripletDealer dealer(nullptr, {false, false, 44});
  auto [st0, st1] = dealer.generate(plan);
  auto xs = mpc::share_float(x, 45);

  // Online: two servers.
  auto chans = net::LocalChannel::make_pair();
  auto opts = mpc::PartyOptions::parsecureml();
  opts.use_gpu = false;
  opts.adaptive = false;
  mpc::PartyContext ctx0(0, chans.a, nullptr, opts);
  mpc::PartyContext ctx1(1, chans.b, nullptr, opts);

  MatrixF v0, v1;
  std::thread s1([&] { v1 = server_role(ctx1, xs.s1, std::move(st1)); });
  v0 = server_role(ctx0, xs.s0, std::move(st0));
  s1.join();

  const MatrixF v = mpc::reconstruct_float(v0, v1);
  // Compare up to sign.
  double dot = 0;
  for (std::size_t i = 0; i < kDims; ++i) {
    dot += static_cast<double>(v(i, 0)) * v_ref(i, 0);
  }
  const double align = std::abs(dot);
  std::printf("secure principal component vs plaintext: |cos angle| = %.4f\n",
              align);
  std::printf("(1.0 = identical direction; protocol leaked only %d public "
              "norm scalars)\n",
              kPowerIters);
  return align > 0.99 ? 0 : 1;
}
